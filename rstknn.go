// Package rstknn is a Go implementation of reverse spatial and textual
// k nearest neighbor (RSTkNN) search — the query, index structures, and
// algorithms of "Reverse spatial and textual k nearest neighbor search"
// (Lu, Lu, Cong — SIGMOD 2011).
//
// Given a collection of geo-textual objects (a location plus a text
// description), an RSTkNN query asks: for a new object q, which existing
// objects would rank q within their top-k most similar objects, where
// similarity blends spatial proximity and textual relevance?
//
//	SimST(o, q) = alpha * (1 - dist(o,q)/maxD) + (1-alpha) * SimT(o.text, q.text)
//
// The package builds a disk-resident IUR-tree (an R-tree whose nodes
// carry per-subtree intersection/union term vectors and object counts) or
// its cluster-enhanced CIUR variant, and answers queries with the paper's
// branch-and-bound search driven by contribution lists.
//
// Quick start:
//
//	objects := []rstknn.Object{
//	    {ID: 1, X: 3, Y: 4, Text: "sushi seafood"},
//	    {ID: 2, X: 8, Y: 1, Text: "noodles ramen"},
//	}
//	eng, err := rstknn.Build(objects, rstknn.Options{Alpha: 0.5})
//	...
//	res, err := eng.Query(5, 5, "sushi bar", 2)
//	// res.IDs lists the objects that would see the query in their top-2.
package rstknn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rstknn/internal/baseline"
	"rstknn/internal/cluster"
	"rstknn/internal/core"
	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/textual"
	"rstknn/internal/vector"
)

// Object is one geo-textual object to index: an application ID, a planar
// location, and a raw text description (tokenized and weighted by the
// engine).
type Object struct {
	ID   int32
	X, Y float64
	Text string
}

// IndexKind selects the index structure.
type IndexKind int

const (
	// IUR builds the plain Intersection-Union R-tree.
	IUR IndexKind = iota
	// CIUR builds the cluster-enhanced IUR-tree: objects are clustered by
	// text and every node stores per-cluster envelopes for tighter bounds.
	CIUR
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case IUR:
		return "iur"
	case CIUR:
		return "ciur"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Options configure an Engine. The zero value gives a sensible default:
// alpha 0.5, TF-IDF weighting, Extended Jaccard similarity, a plain
// IUR-tree with 4 KiB pages and no buffer pool (cold-query I/O counting).
type Options struct {
	// Alpha in [0,1] weighs spatial proximity against text similarity;
	// the conventional default is 0.5. Use AlphaSet to pass an explicit 0.
	Alpha float64
	// AlphaSet marks Alpha as intentionally 0 (pure text ranking).
	AlphaSet bool
	// Weighting is the term weighting scheme: "tfidf" (default), "tf", or
	// "binary" (binary + "ej" yields the keyword-overlap measure).
	Weighting string
	// Measure is the text similarity: "ej" (default) or "cosine".
	Measure string
	// Index picks IUR (default) or CIUR.
	Index IndexKind
	// Clusters is the CIUR cluster count (default 8).
	Clusters int
	// OutlierThreshold enables O-CIUR outlier extraction when positive.
	OutlierThreshold float64
	// EntropyRefinement enables the E-CIUR entropy-driven refinement
	// order at query time.
	EntropyRefinement bool
	// GroupRefine allows this many contributor refinements on internal
	// candidates before expansion (see the paper's lazy group pruning).
	GroupRefine int
	// PageSize overrides the simulated 4 KiB disk page.
	PageSize int
	// BufferPoolPages enables an LRU buffer pool of that many pages.
	// Large pools are sharded by node ID so concurrent queries do not
	// contend on one cache mutex.
	BufferPoolPages int
	// NodeCache enables an in-memory cache of up to that many decoded
	// tree nodes, shared by all queries: hot nodes skip both the
	// simulated page I/O and the per-read deserialization (hits count as
	// CacheHits in QueryStats). Enable it for serving throughput; leave
	// it off to reproduce the paper's cold I/O counts.
	NodeCache int
	// FanoutMin/FanoutMax override the R-tree fan-out.
	FanoutMin, FanoutMax int
	// Workers bounds intra-query parallelism: each query's
	// branch-and-bound frontier is processed in rounds fanned across
	// this many goroutines (and Influence fans its per-user loop the
	// same way). 0 defaults to runtime.GOMAXPROCS(0); 1 forces the
	// sequential path. Results and QueryStats are identical at every
	// setting — parallelism only changes wall-clock time. Queries issued
	// through BatchQuery multiply this with the batch parallelism, so
	// consider Workers=1 for batch-heavy serving.
	Workers int
	// Seed fixes clustering randomness.
	Seed int64
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Alpha == 0 && !out.AlphaSet {
		out.Alpha = 0.5
	}
	if out.Alpha < 0 || out.Alpha > 1 {
		return out, fmt.Errorf("rstknn: Alpha must be in [0,1], got %g", out.Alpha)
	}
	if out.Weighting == "" {
		out.Weighting = "tfidf"
	}
	if _, err := textual.SchemeByName(out.Weighting); err != nil {
		return out, err
	}
	if out.Measure == "" {
		out.Measure = "ej"
	}
	if vector.ByName(out.Measure) == nil {
		return out, fmt.Errorf("rstknn: unknown measure %q", out.Measure)
	}
	if out.Clusters == 0 {
		out.Clusters = 8
	}
	if out.PageSize == 0 {
		out.PageSize = storage.DefaultPageSize
	}
	return out, nil
}

// Engine is a sealed RSTkNN index over one object collection.
//
// A built (or reopened) Engine is safe for any number of concurrent
// readers: Query, QueryVector, QueryByID, TopK, Influence, NaiveQuery,
// BatchQuery, their Ctx variants, and the stats accessors may all run
// from multiple goroutines against the same Engine. Each query charges
// its simulated I/O to its own storage.Tracker, so the QueryStats it
// returns are exact even under concurrent load. Build, Save, and Open
// are not concurrent-safe with anything else on the same Engine.
type Engine struct {
	opt     Options
	scheme  textual.Scheme
	measure vector.TextSim
	vocab   *textual.Vocabulary
	objects []iurtree.Object
	byID    map[int32]int
	tree    *iurtree.Tree
	store   storage.Blobs
	build   time.Duration
}

// Build indexes the objects and returns a ready Engine.
func Build(objects []Object, opt Options) (*Engine, error) {
	resolved, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	scheme, _ := textual.SchemeByName(resolved.Weighting)
	e := &Engine{
		opt:     resolved,
		scheme:  scheme,
		measure: vector.ByName(resolved.Measure),
		byID:    make(map[int32]int, len(objects)),
	}

	start := time.Now()
	corpus := textual.NewCorpus(scheme)
	for _, o := range objects {
		corpus.Add(o.Text)
	}
	e.vocab = corpus.Vocab
	docs := corpus.Vectors()
	e.objects = make([]iurtree.Object, len(objects))
	for i, o := range objects {
		if _, dup := e.byID[o.ID]; dup {
			return nil, fmt.Errorf("rstknn: duplicate object ID %d", o.ID)
		}
		e.byID[o.ID] = i
		e.objects[i] = iurtree.Object{
			ID:  o.ID,
			Loc: geom.Point{X: o.X, Y: o.Y},
			Doc: docs[i],
		}
	}

	var storeOpts []storage.Option
	storeOpts = append(storeOpts, storage.WithPageSize(resolved.PageSize))
	if resolved.BufferPoolPages > 0 {
		storeOpts = append(storeOpts, storage.WithBufferPool(resolved.BufferPoolPages))
	}
	e.store = storage.NewStore(storeOpts...)

	cfg := iurtree.Config{
		Store:      e.store,
		MinEntries: resolved.FanoutMin,
		MaxEntries: resolved.FanoutMax,
	}
	if resolved.Index == CIUR {
		cfg.Clustering = cluster.Run(docs, cluster.Config{
			K:                resolved.Clusters,
			Seed:             resolved.Seed,
			OutlierThreshold: resolved.OutlierThreshold,
		})
	}
	tree, err := iurtree.Build(e.objects, cfg)
	if err != nil {
		return nil, err
	}
	if resolved.NodeCache > 0 {
		tree.SetNodeCache(resolved.NodeCache)
	}
	e.tree = tree
	e.build = time.Since(start)
	return e, nil
}

// vectorize weighs free text against the engine's corpus statistics.
// Unseen terms get the maximum IDF: they never match any indexed object
// anyway, but keep the query's norm honest.
func (e *Engine) vectorize(text string) vector.Vector {
	counts := make(map[vector.TermID]int)
	for _, tok := range textual.Tokenize(text) {
		if id, ok := e.vocab.Lookup(tok); ok {
			counts[id]++
		}
	}
	return textual.Weigh(counts, e.scheme, e.vocab)
}

// Result is the outcome of one reverse query.
type Result struct {
	// IDs lists the objects that would rank the query within their
	// top-k, ascending.
	IDs []int32
	// Stats describes the work performed.
	Stats QueryStats
}

// QueryStats describes the cost of one query under the simulated I/O
// model (one node read = ceil(nodeBytes/pageSize) page accesses). The
// I/O counters come from the query's own execution tracker — never from
// deltas of store-global counters — so they are exact even when many
// queries run concurrently.
type QueryStats struct {
	Duration      time.Duration
	NodesRead     int
	PageAccesses  int64
	CacheHits     int64
	ExactSims     int64
	BoundEvals    int64
	GroupPruned   int
	GroupReported int
	Candidates    int
	Refinements   int
}

// validateQuery rejects the inputs that would otherwise give undefined
// behavior: non-positive k and NaN/Inf coordinates.
func validateQuery(x, y float64, k int) error {
	if k <= 0 {
		return fmt.Errorf("rstknn: k must be positive, got %d", k)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("rstknn: query location (%g, %g) must be finite", x, y)
	}
	return nil
}

// Query answers the RSTkNN query for a prospective object at (x, y) with
// the given text: which indexed objects would rank it within their top-k?
func (e *Engine) Query(x, y float64, text string, k int) (*Result, error) {
	return e.QueryCtx(context.Background(), x, y, text, k)
}

// QueryCtx is Query with cancellation: the context is checked before
// every node read and the query aborts with ctx.Err() once it is done.
func (e *Engine) QueryCtx(ctx context.Context, x, y float64, text string, k int) (*Result, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	return e.QueryVectorCtx(ctx, x, y, e.vectorize(text), k)
}

// QueryVector is Query with a pre-built term vector (advanced use: the
// vector must be weighted against this engine's vocabulary).
func (e *Engine) QueryVector(x, y float64, doc vector.Vector, k int) (*Result, error) {
	return e.QueryVectorCtx(context.Background(), x, y, doc, k)
}

// QueryVectorCtx is QueryVector with cancellation.
func (e *Engine) QueryVectorCtx(ctx context.Context, x, y float64, doc vector.Vector, k int) (*Result, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	strategy := core.RefineByMaxUpper
	if e.opt.EntropyRefinement {
		strategy = core.RefineByEntropy
	}
	// The tracker is this query's execution context: all simulated I/O
	// of this query — and only this query — lands on it.
	var tracker storage.Tracker
	start := time.Now()
	out, err := core.RSTkNN(e.tree, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: doc}, core.Options{
		K:           k,
		Alpha:       e.opt.Alpha,
		Sim:         e.measure,
		Strategy:    strategy,
		GroupRefine: e.opt.GroupRefine,
		Workers:     e.opt.Workers,
		Ctx:         ctx,
		Tracker:     &tracker,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		IDs: out.Results,
		Stats: QueryStats{
			Duration:      time.Since(start),
			NodesRead:     out.Metrics.NodesRead,
			PageAccesses:  tracker.PagesRead(),
			CacheHits:     tracker.CacheHits(),
			ExactSims:     out.Metrics.ExactSims,
			BoundEvals:    out.Metrics.BoundEvals,
			GroupPruned:   out.Metrics.GroupPruned,
			GroupReported: out.Metrics.GroupReported,
			Candidates:    out.Metrics.Candidates,
			Refinements:   out.Metrics.Refinements,
		},
	}, nil
}

// QueryByID answers the reverse query for an object already in the
// index: which *other* indexed objects would rank object id within their
// top-k? The object itself (which trivially ranks the query, similarity
// 1) is excluded from the result.
func (e *Engine) QueryByID(id int32, k int) (*Result, error) {
	return e.QueryByIDCtx(context.Background(), id, k)
}

// QueryByIDCtx is QueryByID with cancellation.
func (e *Engine) QueryByIDCtx(ctx context.Context, id int32, k int) (*Result, error) {
	i, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("rstknn: unknown object ID %d", id)
	}
	o := e.objects[i]
	res, err := e.QueryVectorCtx(ctx, o.Loc.X, o.Loc.Y, o.Doc, k)
	if err != nil {
		return nil, err
	}
	filtered := res.IDs[:0]
	for _, rid := range res.IDs {
		if rid != id {
			filtered = append(filtered, rid)
		}
	}
	res.IDs = filtered
	return res, nil
}

// TopK returns the k indexed objects most similar to the given location
// and text, by descending similarity.
func (e *Engine) TopK(x, y float64, text string, k int) ([]Neighbor, error) {
	return e.TopKCtx(context.Background(), x, y, text, k)
}

// TopKCtx is TopK with cancellation.
func (e *Engine) TopKCtx(ctx context.Context, x, y float64, text string, k int) ([]Neighbor, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	nbs, _, err := core.TopK(e.tree, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		core.TopKOptions{K: k, Alpha: e.opt.Alpha, Sim: e.measure, Exclude: -1, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nbs))
	for i, nb := range nbs {
		out[i] = Neighbor{ID: nb.ID, Similarity: nb.Sim}
	}
	return out, nil
}

// Neighbor is one top-k result.
type Neighbor struct {
	ID         int32
	Similarity float64
}

// Influence answers the bichromatic reverse query: which of the given
// users would rank a facility at (x, y) with the given text within their
// top-k among this engine's indexed objects (treated as the facility
// set)? User text is weighted against the engine's corpus.
func (e *Engine) Influence(users []Object, x, y float64, text string, k int) ([]int32, error) {
	return e.InfluenceCtx(context.Background(), users, x, y, text, k)
}

// InfluenceCtx is Influence with cancellation.
func (e *Engine) InfluenceCtx(ctx context.Context, users []Object, x, y float64, text string, k int) ([]int32, error) {
	if err := validateQuery(x, y, k); err != nil {
		return nil, err
	}
	us := make([]iurtree.Object, len(users))
	for i, u := range users {
		us[i] = iurtree.Object{ID: u.ID, Loc: geom.Point{X: u.X, Y: u.Y}, Doc: e.vectorize(u.Text)}
	}
	var tracker storage.Tracker
	out, err := core.BichromaticRSTkNN(e.tree, us,
		core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		core.BichromaticOptions{K: k, Alpha: e.opt.Alpha, Sim: e.measure,
			Workers: e.opt.Workers, Ctx: ctx, Tracker: &tracker})
	if err != nil {
		return nil, err
	}
	return out.UserIDs, nil
}

// QueryRequest is one unit of work for BatchQuery.
type QueryRequest struct {
	X, Y float64
	Text string
	K    int
}

// BatchResult pairs one BatchQuery answer with its error; exactly one of
// the two fields is meaningful.
type BatchResult struct {
	Result *Result
	Err    error
}

// BatchQuery answers many reverse queries over a worker pool sharing
// this engine. parallelism caps the number of concurrent workers; values
// <= 0 default to runtime.GOMAXPROCS(0). Results are returned in request
// order, each with its own per-query QueryStats.
func (e *Engine) BatchQuery(reqs []QueryRequest, parallelism int) []BatchResult {
	return e.BatchQueryCtx(context.Background(), reqs, parallelism)
}

// BatchQueryCtx is BatchQuery with cancellation: once the context is
// done, not-yet-started requests fail fast with ctx.Err() and running
// ones abort at their next node read.
func (e *Engine) BatchQueryCtx(ctx context.Context, reqs []QueryRequest, parallelism int) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(reqs) {
		parallelism = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				r := reqs[i]
				res, err := e.QueryCtx(ctx, r.X, r.Y, r.Text, r.K)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// NaiveQuery answers the same reverse query by exhaustive scan — the
// correctness oracle and the paper's comparison baseline. Exposed so
// downstream users can sanity-check and benchmark on their own data.
func (e *Engine) NaiveQuery(x, y float64, text string, k int) ([]int32, error) {
	return baseline.Naive(e.objects, core.Query{Loc: geom.Point{X: x, Y: y}, Doc: e.vectorize(text)},
		k, e.opt.Alpha, e.tree.MaxD(), e.measure)
}

// IndexStats describes the sealed index.
type IndexStats struct {
	Objects     int
	Height      int
	Nodes       int64 // stored node blobs
	Pages       int64 // simulated disk pages
	Bytes       int64
	Clusters    int // 0 for IUR
	BuildTime   time.Duration
	VocabSize   int
	Kind        IndexKind
	MaxDistance float64
}

// Stats returns the index statistics.
func (e *Engine) Stats() IndexStats {
	return IndexStats{
		Objects:     e.tree.Len(),
		Height:      e.tree.Height(),
		Nodes:       int64(e.store.Len()),
		Pages:       e.store.TotalPages(),
		Bytes:       e.store.TotalBytes(),
		Clusters:    e.tree.NumClusters(),
		BuildTime:   e.build,
		VocabSize:   e.vocab.Size(),
		Kind:        e.opt.Index,
		MaxDistance: e.tree.MaxD(),
	}
}

// Alpha returns the engine's spatial/textual weight.
func (e *Engine) Alpha() float64 { return e.opt.Alpha }

// Len returns the number of indexed objects.
func (e *Engine) Len() int { return e.tree.Len() }

// ObjectByID returns the indexed object's location and text vector, or an
// error when the ID is unknown.
func (e *Engine) ObjectByID(id int32) (x, y float64, doc vector.Vector, err error) {
	i, ok := e.byID[id]
	if !ok {
		return 0, 0, vector.Vector{}, errors.New("rstknn: unknown object ID")
	}
	o := e.objects[i]
	return o.Loc.X, o.Loc.Y, o.Doc, nil
}

// ResetIOStats zeroes the simulated I/O counters (e.g. to measure cold
// queries after a build).
func (e *Engine) ResetIOStats() { e.store.ResetStats() }

// DropCache empties the buffer pool (if configured), simulating a cold
// start.
func (e *Engine) DropCache() { e.store.DropCache() }
