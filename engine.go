// Package rstknn is a Go implementation of reverse spatial and textual
// k nearest neighbor (RSTkNN) search — the query, index structures, and
// algorithms of "Reverse spatial and textual k nearest neighbor search"
// (Lu, Lu, Cong — SIGMOD 2011).
//
// Given a collection of geo-textual objects (a location plus a text
// description), an RSTkNN query asks: for a new object q, which existing
// objects would rank q within their top-k most similar objects, where
// similarity blends spatial proximity and textual relevance?
//
//	SimST(o, q) = alpha * (1 - dist(o,q)/maxD) + (1-alpha) * SimT(o.text, q.text)
//
// The package builds a disk-resident IUR-tree (an R-tree whose nodes
// carry per-subtree intersection/union term vectors and object counts) or
// its cluster-enhanced CIUR variant, and answers queries with the paper's
// branch-and-bound search driven by contribution lists.
//
// Quick start:
//
//	objects := []rstknn.Object{
//	    {ID: 1, X: 3, Y: 4, Text: "sushi seafood"},
//	    {ID: 2, X: 8, Y: 1, Text: "noodles ramen"},
//	}
//	eng, err := rstknn.Build(objects, rstknn.Options{Alpha: 0.5})
//	...
//	res, err := eng.Query(5, 5, "sushi bar", 2)
//	// res.IDs lists the objects that would see the query in their top-2.
package rstknn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rstknn/internal/cluster"
	"rstknn/internal/geom"
	"rstknn/internal/iurtree"
	"rstknn/internal/storage"
	"rstknn/internal/textual"
	"rstknn/internal/vector"
)

// Engine is an RSTkNN index over one object collection.
//
// The engine follows a copy-on-write snapshot architecture. Every query
// pins the current immutable snapshot for its lifetime, so any number of
// readers — Query, QueryVector, QueryByID, TopK, Influence, NaiveQuery,
// BatchQuery, their Ctx variants, and the stats accessors — may run
// concurrently with each other AND with the write path. Insert, Delete,
// and Apply never mutate a published tree node: they path-copy fresh
// nodes, atomically swap in the successor snapshot, and hand the
// superseded nodes to an epoch-based reclaimer that frees them only once
// no pinned reader can still reach them. Writers serialize among
// themselves on an internal mutex. Each query charges its simulated I/O
// to its own storage.Tracker, so the QueryStats it returns are exact
// even under concurrent load. Save and Close are safe against concurrent
// queries but not against each other.
type Engine struct {
	opt     Options
	scheme  textual.Scheme
	measure vector.TextSim
	vocab   *textual.Vocabulary
	store   storage.Blobs
	rec     *storage.Reclaimer
	build   time.Duration

	// state is the published snapshot; readers pin (see pin) before
	// loading it, writers swap it under writeMu.
	state   atomic.Pointer[engineState]
	writeMu sync.Mutex
}

// engineState is one immutable version of the engine: the tree snapshot
// plus the object table that mirrors it. A published state is never
// mutated — the write path builds a successor and swaps the pointer.
type engineState struct {
	tree    *iurtree.Snapshot
	objects []iurtree.Object
	byID    map[int32]int
}

// pin registers the caller as a reader and returns the current state
// plus a release function. The reclamation epoch is pinned BEFORE the
// snapshot pointer is loaded: any node reachable from the returned state
// cannot be freed until release is called, even if writers swap in many
// successors meanwhile.
func (e *Engine) pin() (*engineState, func()) {
	tok := e.rec.Pin()
	st := e.state.Load()
	return st, func() { e.rec.Release(tok) }
}

// Build indexes the objects and returns a ready Engine.
func Build(objects []Object, opt Options) (*Engine, error) {
	resolved, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	scheme, _ := textual.SchemeByName(resolved.Weighting)
	e := &Engine{
		opt:     resolved,
		scheme:  scheme,
		measure: vector.ByName(resolved.Measure),
	}

	start := time.Now()
	corpus := textual.NewCorpus(scheme)
	for _, o := range objects {
		corpus.Add(o.Text)
	}
	e.vocab = corpus.Vocab
	docs := corpus.Vectors()
	objs := make([]iurtree.Object, len(objects))
	byID := make(map[int32]int, len(objects))
	for i, o := range objects {
		if _, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("rstknn: duplicate object ID %d", o.ID)
		}
		byID[o.ID] = i
		objs[i] = iurtree.Object{
			ID:  o.ID,
			Loc: geom.Point{X: o.X, Y: o.Y},
			Doc: docs[i],
		}
	}

	var storeOpts []storage.Option
	storeOpts = append(storeOpts, storage.WithPageSize(resolved.PageSize))
	if resolved.BufferPoolPages > 0 {
		storeOpts = append(storeOpts, storage.WithBufferPool(resolved.BufferPoolPages))
	}
	e.store = storage.NewStore(storeOpts...)

	cfg := iurtree.Config{
		Store:      e.store,
		MinEntries: resolved.FanoutMin,
		MaxEntries: resolved.FanoutMax,
	}
	if resolved.Index == CIUR {
		cfg.Clustering = cluster.Run(docs, cluster.Config{
			K:                resolved.Clusters,
			Seed:             resolved.Seed,
			OutlierThreshold: resolved.OutlierThreshold,
		})
	}
	tree, err := iurtree.Build(objs, cfg)
	if err != nil {
		return nil, err
	}
	if resolved.NodeCache > 0 {
		tree.SetNodeCache(resolved.NodeCache)
	}
	if resolved.BoundCache != 0 {
		// 0 keeps the default-on cache; negative disables, positive
		// resizes. Done before the first query so sizing never races a
		// concurrent reader.
		tree.SetBoundCache(resolved.BoundCache)
	}
	e.rec = storage.NewReclaimer(e.store)
	// Successor snapshots share the decoded-node cache with the first
	// one, so evicting through it covers every version.
	e.rec.SetOnFree(tree.InvalidateNode)
	e.state.Store(&engineState{tree: tree, objects: objs, byID: byID})
	e.build = time.Since(start)
	return e, nil
}

// vectorize weighs free text against the engine's corpus statistics.
// Unseen terms get the maximum IDF: they never match any indexed object
// anyway, but keep the query's norm honest.
func (e *Engine) vectorize(text string) vector.Vector {
	counts := make(map[vector.TermID]int)
	for _, tok := range textual.Tokenize(text) {
		if id, ok := e.vocab.Lookup(tok); ok {
			counts[id]++
		}
	}
	return textual.Weigh(counts, e.scheme, e.vocab)
}

// IndexStats describes the index at the moment of the call.
type IndexStats struct {
	Objects int
	Height  int
	Nodes   int64 // stored node blobs (live plus retired, awaiting reclaim)
	Pages   int64 // simulated disk pages, including retired garbage
	Bytes   int64
	// LivePages/LiveBytes exclude retired-but-not-yet-freed nodes: the
	// footprint the index would have after full reclamation.
	LivePages int64
	LiveBytes int64
	// Writes/PagesWritten count the blob writes of Build plus every
	// Insert/Delete/Apply since (or since ResetIOStats).
	Writes       int64
	PagesWritten int64
	// PendingReclaim is the number of retired nodes still waiting for
	// pinned readers to finish.
	PendingReclaim int
	// BoundCacheHits/Misses/Entries describe the textual bound cache of
	// the zero-copy read path (see Options.BoundCache). Hits re-decode
	// nothing but still pay full simulated I/O, so they appear nowhere
	// in the I/O counters.
	BoundCacheHits    int64
	BoundCacheMisses  int64
	BoundCacheEntries int
	// BufferPoolHits/Misses split the engine-wide node reads by whether
	// the buffer pool (or decoded-node cache) served them: misses paid
	// simulated page I/O, hits did not. Both are zero-history counters
	// since Build (or ResetIOStats).
	BufferPoolHits   int64
	BufferPoolMisses int64
	Clusters         int // 0 for IUR
	BuildTime        time.Duration
	VocabSize        int
	Kind             IndexKind
	MaxDistance      float64
}

// Stats returns the index statistics.
func (e *Engine) Stats() IndexStats {
	st, release := e.pin()
	defer release()
	ioStats := e.store.Stats()
	out := IndexStats{
		Objects:        st.tree.Len(),
		Height:         st.tree.Height(),
		Nodes:          int64(e.store.Len()),
		Pages:          e.store.TotalPages(),
		Bytes:          e.store.TotalBytes(),
		LivePages:      e.store.LivePages(),
		LiveBytes:      e.store.LiveBytes(),
		Writes:         ioStats.Writes,
		PagesWritten:   ioStats.PagesWritten,
		PendingReclaim: e.rec.Stats().Pending,
		Clusters:       st.tree.NumClusters(),
		BuildTime:      e.build,
		VocabSize:      e.vocab.Size(),
		Kind:           e.opt.Index,
		MaxDistance:    st.tree.MaxD(),
	}
	bc := st.tree.BoundCacheStats()
	out.BoundCacheHits = bc.Hits
	out.BoundCacheMisses = bc.Misses
	out.BoundCacheEntries = bc.Entries
	out.BufferPoolHits = ioStats.CacheHits
	out.BufferPoolMisses = ioStats.Reads
	return out
}

// ratio returns hits/(hits+misses), or 0 when nothing was counted.
func ratio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// BufferPoolHitRatio returns the fraction of node reads served without
// simulated page I/O — BufferPoolHits/(BufferPoolHits+BufferPoolMisses)
// — or 0 when no reads happened.
func (s IndexStats) BufferPoolHitRatio() float64 {
	return ratio(s.BufferPoolHits, s.BufferPoolMisses)
}

// BoundCacheHitRatio returns the fraction of textual-payload decodes the
// bound cache absorbed — BoundCacheHits/(BoundCacheHits+BoundCacheMisses)
// — or 0 when the cache was never consulted.
func (s IndexStats) BoundCacheHitRatio() float64 {
	return ratio(s.BoundCacheHits, s.BoundCacheMisses)
}

// Alpha returns the engine's spatial/textual weight.
func (e *Engine) Alpha() float64 { return e.opt.Alpha }

// Len returns the number of indexed objects.
//
//rstknn:allow pinsafe reads only the snapshot's in-memory object count; epoch reclamation recycles tree-node slots, never the GC-managed engineState
func (e *Engine) Len() int { return e.state.Load().tree.Len() }

// ObjectByID returns the indexed object's location and text vector, or an
// error when the ID is unknown.
func (e *Engine) ObjectByID(id int32) (x, y float64, doc vector.Vector, err error) {
	//rstknn:allow pinsafe touches only the GC-managed object table of the snapshot, not reclaimable tree-node slots; no pin needed
	st := e.state.Load()
	i, ok := st.byID[id]
	if !ok {
		return 0, 0, vector.Vector{}, errors.New("rstknn: unknown object ID")
	}
	o := st.objects[i]
	return o.Loc.X, o.Loc.Y, o.Doc, nil
}

// ResetIOStats zeroes the simulated I/O counters (e.g. to measure cold
// queries after a build).
func (e *Engine) ResetIOStats() { e.store.ResetStats() }

// DropCache empties the buffer pool (if configured), simulating a cold
// start.
func (e *Engine) DropCache() { e.store.DropCache() }
