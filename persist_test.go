package rstknn

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	objects := genRestaurants(rng, 300)
	for _, opt := range []Options{
		{},
		{Index: CIUR, Clusters: 5, OutlierThreshold: 0.1},
		{Weighting: "binary", Measure: "cosine", Alpha: 0.3},
	} {
		eng, err := Build(objects, opt)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "idx")
		if err := eng.Save(dir); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Identical answers for a spread of queries.
		for trial := 0; trial < 5; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			text := menuTerms[rng.Intn(len(menuTerms))] + " " + menuTerms[rng.Intn(len(menuTerms))]
			k := 1 + rng.Intn(6)
			a, err := eng.Query(x, y, text, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := re.Query(x, y, text, k)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) {
				t.Fatalf("reopened engine disagrees: %v vs %v", a.IDs, b.IDs)
			}
		}
		// Index statistics survive.
		sa, sb := eng.Stats(), re.Stats()
		if sa.Objects != sb.Objects || sa.Height != sb.Height ||
			sa.Clusters != sb.Clusters || sa.MaxDistance != sb.MaxDistance ||
			sa.VocabSize != sb.VocabSize {
			t.Errorf("stats differ: %+v vs %+v", sa, sb)
		}
		if err := re.Close(); err != nil {
			t.Error(err)
		}
		if err := eng.Close(); err != nil { // no-op for in-memory engines
			t.Error(err)
		}
	}
}

func TestSaveOpenEmptyEngine(t *testing.T) {
	eng, err := Build(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "empty")
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query(0, 0, "anything", 3)
	if err != nil || len(res.IDs) != 0 {
		t.Errorf("empty reopened engine: %v, %v", res, err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir should fail")
	}
	// Corrupt meta.json.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{nope"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("corrupt meta should fail")
	}
	// Wrong version.
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"version": 99}`), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("future version should fail")
	}
}

func TestOpenDetectsObjectCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	eng, err := Build(genRestaurants(rng, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Truncate objects.csv to a single line.
	path := filepath.Join(dir, "objects.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b == '\n' {
			os.WriteFile(path, data[:i+1], 0o644)
			break
		}
	}
	if _, err := Open(dir); err == nil {
		t.Error("object count mismatch should fail")
	}
}

func TestReopenedEngineChargesIO(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	eng, err := Build(genRestaurants(rng, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query(50, 50, "sushi", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PageAccesses == 0 {
		t.Error("reopened engine should charge simulated I/O")
	}
}

func TestSaveTwiceIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	eng, err := Build(genRestaurants(rng, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1 := filepath.Join(t.TempDir(), "a")
	d2 := filepath.Join(t.TempDir(), "b")
	if err := eng.Save(d1); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(d2); err != nil {
		t.Fatal(err)
	}
	r1, err := Open(d1)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	a, _ := r1.Query(10, 10, "sushi", 3)
	b, _ := r2.Query(10, 10, "sushi", 3)
	if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) {
		t.Error("two saves of the same engine disagree")
	}
}
