package rstknn

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// savePristineIndex builds a small engine and persists it, returning the
// directory and the bytes of each saved file. The fuzz target mutates
// index.log — the binary node store, the only file whose bytes reach the
// page-decode paths — and keeps the text sidecars pristine.
func savePristineIndex(tb testing.TB) (dir string, files map[string][]byte) {
	tb.Helper()
	rng := rand.New(rand.NewSource(77))
	eng, err := Build(genRestaurants(rng, 60), Options{NodeCache: 4})
	if err != nil {
		tb.Fatal(err)
	}
	dir = tb.TempDir()
	if err := eng.Save(dir); err != nil {
		tb.Fatal(err)
	}
	files = make(map[string][]byte)
	for _, name := range []string{"meta.json", "vocab.csv", "objects.csv", "index.log"} {
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			tb.Fatal(err)
		}
		files[name] = buf
	}
	return dir, files
}

// FuzzLoad is the end-to-end corruption fuzz: arbitrary bytes replace
// the serialized index.log and Open must either reject the directory
// with an error or produce an engine whose queries fail cleanly — never
// a panic, and never an attacker-sized allocation (decoded counts are
// bounded by blob and file sizes before any make call).
func FuzzLoad(f *testing.F) {
	_, files := savePristineIndex(f)
	pristine := files["index.log"]

	f.Add([]byte{})
	f.Add(pristine)
	f.Add(pristine[:len(pristine)/2])
	flip := append([]byte(nil), pristine...)
	flip[0] ^= 0x80
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		for name, content := range files {
			if name == "index.log" {
				content = data
			}
			if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		eng, err := Open(dir)
		if err != nil {
			return // rejected cleanly — the only other acceptable outcome
		}
		// Accepted: corruption the eager open missed must surface as
		// query errors, not panics, when pages are read lazily.
		if res, err := eng.Query(50, 50, "pasta wine", 3); err == nil {
			_ = res.IDs
		}
		if err := eng.Close(); err != nil {
			t.Errorf("closing a loaded engine: %v", err)
		}
	})
}

// TestWriteLoadFuzzCorpus regenerates the checked-in seed corpus from a
// real saved index. Run with RSTKNN_WRITE_CORPUS=1 to refresh testdata.
func TestWriteLoadFuzzCorpus(t *testing.T) {
	if os.Getenv("RSTKNN_WRITE_CORPUS") == "" {
		t.Skip("set RSTKNN_WRITE_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	_, files := savePristineIndex(t)
	pristine := files["index.log"]
	truncated := pristine[:len(pristine)/3]
	wildCount := append([]byte(nil), pristine...)
	// Stamp an absurd length into the first record header's size field.
	wildCount[4], wildCount[5], wildCount[6], wildCount[7] = 0xFF, 0xFF, 0xFF, 0x7F
	seeds := [][]byte{
		pristine,
		truncated,
		wildCount,
		{},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzLoad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
