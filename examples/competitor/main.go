// Competitor analysis — the paper's motivating scenario at a realistic
// scale. A city of restaurants is indexed; a chain evaluates three
// candidate sites (location + menu) by how many existing restaurants
// would count the new venue among their top-k most similar competitors
// (the size of its reverse spatial-textual kNN set). A venue with a large
// RSTkNN set enters many incumbents' competitive radar — exactly the
// "influence" the reverse query measures.
//
// Run with: go run ./examples/competitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rstknn"
)

var cuisines = [][]string{
	{"sushi", "sashimi", "seafood", "japanese"},
	{"ramen", "noodles", "broth", "izakaya"},
	{"pizza", "pasta", "italian", "espresso"},
	{"tacos", "burritos", "mexican", "salsa"},
	{"burger", "fries", "shakes", "diner"},
	{"curry", "tandoori", "naan", "indian"},
}

// city generates n restaurants in a 10km x 10km grid with cuisine-themed
// menus concentrated in neighborhoods.
func city(rng *rand.Rand, n int) []rstknn.Object {
	out := make([]rstknn.Object, n)
	// Each cuisine gravitates to a neighborhood center.
	centers := make([][2]float64, len(cuisines))
	for i := range centers {
		centers[i] = [2]float64{rng.Float64() * 10000, rng.Float64() * 10000}
	}
	for i := range out {
		c := rng.Intn(len(cuisines))
		menu := cuisines[c]
		var sb strings.Builder
		for j := 0; j < 2+rng.Intn(3); j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(menu[rng.Intn(len(menu))])
		}
		out[i] = rstknn.Object{
			ID:   int32(i),
			X:    centers[c][0] + rng.NormFloat64()*800,
			Y:    centers[c][1] + rng.NormFloat64()*800,
			Text: sb.String(),
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(7))
	restaurants := city(rng, 5000)

	eng, err := rstknn.Build(restaurants, rstknn.Options{
		Alpha: 0.4, // menus matter a little more than distance
		Index: rstknn.CIUR,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("indexed %d restaurants (CIUR, %d clusters, %d pages, build %s)\n\n",
		st.Objects, st.Clusters, st.Pages, st.BuildTime.Round(1e6))

	// Candidate sites sit inside real neighborhoods: next to a sampled
	// incumbent, with a menu from the local cuisine. (A random empty lot
	// in a 10km city is a top-10 competitor of nobody — location
	// selection starts from plausible sites.)
	type site struct {
		name string
		x, y float64
		menu string
	}
	var candidates []site
	for i, name := range []string{"Harbor site", "Midtown site", "University site"} {
		anchor := restaurants[rng.Intn(len(restaurants))]
		candidates = append(candidates, site{
			name: name,
			x:    anchor.X + rng.NormFloat64()*100,
			y:    anchor.Y + rng.NormFloat64()*100,
			menu: anchor.Text + " " + cuisines[i][0],
		})
	}

	const k = 10
	best, bestCount := "", -1
	for _, c := range candidates {
		res, err := eng.Query(c.x, c.y, c.menu, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s (%5.0f, %5.0f) %q\n", c.name, c.x, c.y, c.menu)
		fmt.Printf("  would be a top-%d competitor of %d restaurants\n", k, len(res.IDs))
		fmt.Printf("  cost: %d page accesses, %.1f%% of objects decided at node level\n",
			res.Stats.PageAccesses,
			100*float64(res.Stats.GroupPruned+res.Stats.GroupReported)/float64(st.Objects))
		if len(res.IDs) > bestCount {
			best, bestCount = c.name, len(res.IDs)
		}
	}
	fmt.Printf("\n=> %s enters the most competitive sets (%d incumbents)\n", best, bestCount)
}
