// Influence — the bichromatic extension. Facilities (food trucks) are
// indexed; users with locations and taste profiles form a second set. A
// new truck is "influential" for a user when it would rank within the
// user's top-k most relevant trucks. This is the building block the
// follow-up MaxBRSTkNN literature optimizes over candidate locations.
//
// Run with: go run ./examples/influence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rstknn"
)

var tastes = []string{
	"coffee", "espresso", "pastries", "bagels", "tacos", "burritos",
	"ramen", "dumplings", "salads", "smoothies", "bbq", "brisket",
}

func randomText(rng *rand.Rand, nTerms int) string {
	var sb strings.Builder
	for j := 0; j < nTerms; j++ {
		if j > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(tastes[rng.Intn(len(tastes))])
	}
	return sb.String()
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// 800 existing food trucks across downtown (3km x 3km).
	trucks := make([]rstknn.Object, 800)
	for i := range trucks {
		trucks[i] = rstknn.Object{
			ID:   int32(i),
			X:    rng.Float64() * 3000,
			Y:    rng.Float64() * 3000,
			Text: randomText(rng, 2+rng.Intn(3)),
		}
	}
	eng, err := rstknn.Build(trucks, rstknn.Options{Alpha: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	// 300 users with home locations and taste profiles.
	users := make([]rstknn.Object, 300)
	for i := range users {
		users[i] = rstknn.Object{
			ID:   int32(1000 + i),
			X:    rng.Float64() * 3000,
			Y:    rng.Float64() * 3000,
			Text: randomText(rng, 3),
		}
	}

	// Compare two launch plans for a new coffee truck.
	plans := []struct {
		name string
		x, y float64
		menu string
	}{
		{"Station plaza", 1500, 1500, "coffee espresso pastries"},
		{"Riverside park", 200, 2800, "coffee smoothies bagels"},
	}
	const k = 5
	for _, p := range plans {
		influenced, err := eng.Influence(users, p.x, p.y, p.menu, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s (%4.0f, %4.0f) %q -> top-%d truck for %d of %d users\n",
			p.name, p.x, p.y, p.menu, k, len(influenced), len(users))
		if len(influenced) > 0 {
			fmt.Printf("  e.g. users %v\n", influenced[:min(5, len(influenced))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
