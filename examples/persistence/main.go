// Persistence: build an index once, save it to disk, reopen it in a
// "second process", and show that queries agree and that the reopened
// engine reads its nodes from the on-disk store (simulated page I/O).
//
// Run with: go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"rstknn"
)

var stock = []string{
	"coffee", "beans", "roastery", "espresso", "brunch", "bakery",
	"croissant", "books", "vinyl", "records", "plants", "flowers",
}

func main() {
	rng := rand.New(rand.NewSource(5))
	shops := make([]rstknn.Object, 1500)
	for i := range shops {
		var sb strings.Builder
		for j := 0; j < 2+rng.Intn(3); j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(stock[rng.Intn(len(stock))])
		}
		shops[i] = rstknn.Object{
			ID:   int32(i),
			X:    rng.Float64() * 500,
			Y:    rng.Float64() * 500,
			Text: sb.String(),
		}
	}

	eng, err := rstknn.Build(shops, rstknn.Options{Index: rstknn.CIUR, Clusters: 6})
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join(os.TempDir(), "rstknn-example-index")
	defer os.RemoveAll(dir)
	if err := eng.Save(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved index to %s\n", dir)
	for _, name := range []string{"meta.json", "vocab.csv", "objects.csv", "index.log"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %7d bytes\n", name, fi.Size())
	}

	// "Another process": reopen from disk.
	re, err := rstknn.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()

	const k = 5
	a, err := eng.Query(250, 250, "coffee espresso", k)
	if err != nil {
		log.Fatal(err)
	}
	b, err := re.Query(250, 250, "coffee espresso", k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverse top-%d query on both engines:\n", k)
	fmt.Printf("  in-memory: %d results, %d page accesses\n", len(a.IDs), a.Stats.PageAccesses)
	fmt.Printf("  reopened:  %d results, %d page accesses (from index.log)\n", len(b.IDs), b.Stats.PageAccesses)
	if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) {
		log.Fatal("engines disagree!")
	}
	fmt.Println("  identical result sets ✓")
}
