// Quickstart: build an RSTkNN engine over a handful of restaurants and
// ask the reverse question — "if I open a new place here with this menu,
// which existing restaurants would see it among their top-k most similar
// competitors?"
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rstknn"
)

func main() {
	restaurants := []rstknn.Object{
		{ID: 1, X: 2, Y: 3, Text: "sushi seafood sashimi"},
		{ID: 2, X: 3, Y: 2, Text: "sushi bar cocktails"},
		{ID: 3, X: 8, Y: 8, Text: "noodles ramen broth"},
		{ID: 4, X: 9, Y: 7, Text: "ramen izakaya sake"},
		{ID: 5, X: 5, Y: 5, Text: "pizza pasta espresso"},
		{ID: 6, X: 1, Y: 9, Text: "seafood grill oysters"},
	}

	eng, err := rstknn.Build(restaurants, rstknn.Options{Alpha: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("indexed %d objects (height %d, %d pages, vocab %d)\n\n",
		st.Objects, st.Height, st.Pages, st.VocabSize)

	// A new sushi place at (3, 3): whose top-2 competitor list would it
	// enter?
	res, err := eng.Query(3, 3, "sushi seafood", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a new 'sushi seafood' spot at (3,3) would be a top-2 competitor of %d restaurants:\n", len(res.IDs))
	for _, id := range res.IDs {
		x, y, _, _ := eng.ObjectByID(id)
		fmt.Printf("  restaurant %d at (%g, %g)\n", id, x, y)
	}

	// The forward question for comparison: which existing places are most
	// similar to the prospective one?
	nbs, err := eng.TopK(3, 3, "sushi seafood", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost similar existing restaurants (top-3):")
	for i, nb := range nbs {
		fmt.Printf("  %d. restaurant %d (similarity %.3f)\n", i+1, nb.ID, nb.Similarity)
	}

	fmt.Printf("\nquery cost: %d node reads, %d page accesses, %d exact similarity computations\n",
		res.Stats.NodesRead, res.Stats.PageAccesses, res.Stats.ExactSims)
}
