// Tuning — an index-selection study on one workload. Builds every index
// variant (IUR, CIUR at several cluster counts, O-CIUR, E-CIUR) over the
// same collection, replays the same query set against each, and reports
// cost side by side — how a downstream user would pick a configuration.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"text/tabwriter"

	"rstknn"
)

var themes = [][]string{
	{"hotel", "rooms", "suite", "breakfast", "spa"},
	{"museum", "gallery", "exhibits", "art", "history"},
	{"park", "trails", "playground", "picnic", "garden"},
	{"cinema", "movies", "screen", "popcorn", "imax"},
	{"market", "produce", "organic", "bakery", "cheese"},
}

func main() {
	rng := rand.New(rand.NewSource(3))
	objects := make([]rstknn.Object, 4000)
	for i := range objects {
		theme := themes[rng.Intn(len(themes))]
		var sb strings.Builder
		for j := 0; j < 2+rng.Intn(4); j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(theme[rng.Intn(len(theme))])
		}
		objects[i] = rstknn.Object{
			ID:   int32(i),
			X:    rng.Float64() * 1000,
			Y:    rng.Float64() * 1000,
			Text: sb.String(),
		}
	}

	type variant struct {
		name string
		opt  rstknn.Options
	}
	variants := []variant{
		{"IUR", rstknn.Options{}},
		{"CIUR-4", rstknn.Options{Index: rstknn.CIUR, Clusters: 4}},
		{"CIUR-16", rstknn.Options{Index: rstknn.CIUR, Clusters: 16}},
		{"O-CIUR-16", rstknn.Options{Index: rstknn.CIUR, Clusters: 16, OutlierThreshold: 0.15}},
		{"E-CIUR-16", rstknn.Options{Index: rstknn.CIUR, Clusters: 16, EntropyRefinement: true}},
	}

	// A fixed query workload.
	type query struct {
		x, y float64
		text string
		k    int
	}
	queries := make([]query, 15)
	for i := range queries {
		theme := themes[rng.Intn(len(themes))]
		queries[i] = query{
			x: rng.Float64() * 1000, y: rng.Float64() * 1000,
			text: theme[rng.Intn(len(theme))] + " " + theme[rng.Intn(len(theme))],
			k:    10,
		}
	}

	tw := tabwriter.NewWriter(log.Writer(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tbuild\tindex MiB\tmean pages/q\tmean sims/q\tmean |result|")
	var referenceResults []int
	for _, v := range variants {
		eng, err := rstknn.Build(objects, v.opt)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.Stats()
		var pages, sims, results float64
		var sizes []int
		for _, q := range queries {
			res, err := eng.Query(q.x, q.y, q.text, q.k)
			if err != nil {
				log.Fatal(err)
			}
			pages += float64(res.Stats.PageAccesses)
			sims += float64(res.Stats.ExactSims)
			results += float64(len(res.IDs))
			sizes = append(sizes, len(res.IDs))
		}
		// All variants must agree on every result set.
		if referenceResults == nil {
			referenceResults = sizes
		} else {
			for i := range sizes {
				if sizes[i] != referenceResults[i] {
					log.Fatalf("%s disagrees with reference on query %d", v.name, i)
				}
			}
		}
		n := float64(len(queries))
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f\t%.1f\t%.1f\n",
			v.name, st.BuildTime.Round(1e6), float64(st.Bytes)/(1<<20),
			pages/n, sims/n, results/n)
	}
	tw.Flush()
	fmt.Println("\nall variants returned identical result sets across the workload ✓")
}
