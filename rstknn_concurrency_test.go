package rstknn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// The concurrency contract: any number of goroutines may query one
// Engine, each query's results match what a sequential run returns, and
// each query's QueryStats are attributed exactly to that query.

// concOp is one element of the mixed workload: it runs a query and
// returns a comparable fingerprint of (results, I/O attribution).
type concOp struct {
	kind string // "query", "byid", "topk"
	x, y float64
	text string
	id   int32
	k    int
}

func genWorkload(rng *rand.Rand, n int, objs []Object) []concOp {
	texts := []string{"sushi seafood", "noodles ramen", "pizza pasta", "steak grill", "tapas wine"}
	ops := make([]concOp, n)
	for i := range ops {
		switch rng.Intn(3) {
		case 0:
			ops[i] = concOp{kind: "query", x: rng.Float64() * 100, y: rng.Float64() * 100,
				text: texts[rng.Intn(len(texts))], k: 1 + rng.Intn(8)}
		case 1:
			ops[i] = concOp{kind: "byid", id: objs[rng.Intn(len(objs))].ID, k: 1 + rng.Intn(8)}
		default:
			ops[i] = concOp{kind: "topk", x: rng.Float64() * 100, y: rng.Float64() * 100,
				text: texts[rng.Intn(len(texts))], k: 1 + rng.Intn(8)}
		}
	}
	return ops
}

// opOutcome captures everything the stress test compares across runs.
type opOutcome struct {
	ids       []int32
	neighbors []Neighbor
	nodes     int
	pages     int64
	hits      int64
	err       string
}

func runOp(e *Engine, op concOp) opOutcome {
	switch op.kind {
	case "query":
		res, err := e.Query(op.x, op.y, op.text, op.k)
		if err != nil {
			return opOutcome{err: err.Error()}
		}
		return opOutcome{ids: res.IDs, nodes: res.Stats.NodesRead,
			pages: res.Stats.PageAccesses, hits: res.Stats.CacheHits}
	case "byid":
		res, err := e.QueryByID(op.id, op.k)
		if err != nil {
			return opOutcome{err: err.Error()}
		}
		return opOutcome{ids: res.IDs, nodes: res.Stats.NodesRead,
			pages: res.Stats.PageAccesses, hits: res.Stats.CacheHits}
	default:
		nbs, err := e.TopK(op.x, op.y, op.text, op.k)
		if err != nil {
			return opOutcome{err: err.Error()}
		}
		return opOutcome{neighbors: nbs}
	}
}

// TestConcurrentQueriesMatchSequential is the stress test from the
// execution-context design: G goroutines share one Engine over a mixed
// workload, and every operation must return exactly what a sequential
// run returns, with self-consistent per-query stats.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := genRestaurants(rng, 600)

	engines := []struct {
		name string
		opt  Options
	}{
		// No cache at all: attribution must be bit-exact vs sequential.
		{"cold", Options{}},
		// Buffer pool + node cache: results still exact; I/O may shift
		// between pages and cache hits depending on interleaving.
		{"cached", Options{BufferPoolPages: 512, NodeCache: 256}},
	}
	for _, ec := range engines {
		t.Run(ec.name, func(t *testing.T) {
			eng, err := Build(objs, ec.opt)
			if err != nil {
				t.Fatal(err)
			}
			nOps := 96
			if testing.Short() {
				nOps = 24
			}
			ops := genWorkload(rand.New(rand.NewSource(11)), nOps, objs)

			// For the cold engine every run is identical; compute the
			// baseline on a second identical engine so the sequential pass
			// cannot warm anything the concurrent pass then reuses.
			base, err := Build(objs, ec.opt)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]opOutcome, len(ops))
			for i, op := range ops {
				want[i] = runOp(base, op)
				if want[i].err != "" {
					t.Fatalf("sequential op %d failed: %s", i, want[i].err)
				}
			}

			const goroutines = 8
			got := make([]opOutcome, len(ops))
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Each goroutine walks the whole workload in a different
					// order so identical ops overlap in time.
					for j := 0; j < len(ops); j++ {
						i := (j*goroutines + g) % len(ops)
						out := runOp(eng, ops[i])
						if g == i%goroutines {
							got[i] = out
						}
					}
				}(g)
			}
			wg.Wait()

			for i := range ops {
				if got[i].err != "" {
					t.Fatalf("concurrent op %d failed: %s", i, got[i].err)
				}
				if !reflect.DeepEqual(got[i].ids, want[i].ids) || !reflect.DeepEqual(got[i].neighbors, want[i].neighbors) {
					t.Fatalf("op %d (%s): concurrent result differs from sequential:\n got %+v\nwant %+v",
						i, ops[i].kind, got[i], want[i])
				}
				if ops[i].kind == "topk" {
					continue // TopK reports no QueryStats
				}
				// Per-query stats must be self-consistent regardless of
				// interleaving: every node read is either page I/O or a hit.
				if got[i].nodes <= 0 {
					t.Fatalf("op %d: NodesRead = %d, want > 0", i, got[i].nodes)
				}
				if got[i].pages+got[i].hits < int64(got[i].nodes) {
					t.Fatalf("op %d: PageAccesses(%d) + CacheHits(%d) < NodesRead(%d)",
						i, got[i].pages, got[i].hits, got[i].nodes)
				}
				if ec.name == "cold" {
					// No cache: attribution is deterministic and exact.
					if got[i].hits != 0 {
						t.Fatalf("op %d: CacheHits = %d on a cache-less engine", i, got[i].hits)
					}
					if got[i].nodes != want[i].nodes || got[i].pages != want[i].pages {
						t.Fatalf("op %d: I/O attribution drifted under concurrency: got nodes=%d pages=%d, want nodes=%d pages=%d",
							i, got[i].nodes, got[i].pages, want[i].nodes, want[i].pages)
					}
					if got[i].pages < int64(got[i].nodes) {
						t.Fatalf("op %d: PageAccesses(%d) < NodesRead(%d) on cold store",
							i, got[i].pages, got[i].nodes)
					}
				}
			}
		})
	}
}

func TestConcurrentBatchQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eng, err := Build(genRestaurants(rng, 800), Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]QueryRequest, 40)
	for i := range reqs {
		reqs[i] = QueryRequest{X: rng.Float64() * 100, Y: rng.Float64() * 100,
			Text: "sushi seafood", K: 1 + i%7}
	}
	seq := eng.BatchQuery(reqs, 1)
	par := eng.BatchQuery(reqs, 6)
	for i := range reqs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("request %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Result.IDs, par[i].Result.IDs) {
			t.Fatalf("request %d: parallel batch returned %v, sequential %v",
				i, par[i].Result.IDs, seq[i].Result.IDs)
		}
		if seq[i].Result.Stats.PageAccesses != par[i].Result.Stats.PageAccesses {
			t.Fatalf("request %d: per-query page attribution drifted: %d vs %d",
				i, seq[i].Result.Stats.PageAccesses, par[i].Result.Stats.PageAccesses)
		}
	}
}

// TestIntraQueryParallelUnderConcurrentCallers stacks both concurrency
// axes: every query fans its candidate frontier across intra-query
// workers (Options.Workers) while several goroutines hammer the same
// engine through BatchQuery. Run under -race this is the stress test for
// the worker pool's sharing discipline (scratch arenas, scorer copies,
// tracker counters); the assertions pin that results and I/O attribution
// still match a purely sequential engine.
func TestIntraQueryParallelUnderConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	objs := genRestaurants(rng, 600)
	par, err := Build(objs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]QueryRequest, 48)
	texts := []string{"sushi seafood", "noodles ramen", "pizza pasta", "steak grill"}
	for i := range reqs {
		reqs[i] = QueryRequest{X: rng.Float64() * 100, Y: rng.Float64() * 100,
			Text: texts[i%len(texts)], K: 1 + i%9}
	}
	want := seq.BatchQuery(reqs, 1)

	const callers = 4
	outs := make([][]BatchResult, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g] = par.BatchQuery(reqs, 2)
		}(g)
	}
	wg.Wait()

	for g, got := range outs {
		for i := range reqs {
			if want[i].Err != nil || got[i].Err != nil {
				t.Fatalf("caller %d request %d failed: seq=%v par=%v", g, i, want[i].Err, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Result.IDs, want[i].Result.IDs) {
				t.Fatalf("caller %d request %d: parallel engine returned %v, sequential %v",
					g, i, got[i].Result.IDs, want[i].Result.IDs)
			}
			if got[i].Result.Stats.NodesRead != want[i].Result.Stats.NodesRead ||
				got[i].Result.Stats.PageAccesses != want[i].Result.Stats.PageAccesses {
				t.Fatalf("caller %d request %d: I/O attribution drifted: got nodes=%d pages=%d, want nodes=%d pages=%d",
					g, i, got[i].Result.Stats.NodesRead, got[i].Result.Stats.PageAccesses,
					want[i].Result.Stats.NodesRead, want[i].Result.Stats.PageAccesses)
			}
		}
	}
}

func TestQueryCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eng, err := Build(genRestaurants(rng, 500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryCtx(ctx, 50, 50, "sushi", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := eng.TopKCtx(ctx, 50, 50, "sushi", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	out := eng.BatchQueryCtx(ctx, []QueryRequest{{X: 1, Y: 1, Text: "sushi", K: 3}}, 2)
	if !errors.Is(out[0].Err, context.Canceled) {
		t.Fatalf("BatchQueryCtx with cancelled ctx: err = %v, want context.Canceled", out[0].Err)
	}
}

func TestQueryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eng, err := Build(genRestaurants(rng, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name    string
		x, y    float64
		k       int
		wantSub string
	}{
		{"zero k", 1, 1, 0, "k must be positive"},
		{"negative k", 1, 1, -3, "k must be positive"},
		{"NaN x", math.NaN(), 1, 5, "must be finite"},
		{"Inf y", 1, math.Inf(1), 5, "must be finite"},
		{"-Inf x", math.Inf(-1), 1, 5, "must be finite"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := eng.Query(tc.x, tc.y, "sushi", tc.k); err == nil || !containsSub(err, tc.wantSub) {
				t.Errorf("Query(%g,%g,k=%d): err = %v, want substring %q", tc.x, tc.y, tc.k, err, tc.wantSub)
			}
			if _, err := eng.QueryVector(tc.x, tc.y, eng.vectorize("sushi"), tc.k); err == nil || !containsSub(err, tc.wantSub) {
				t.Errorf("QueryVector(%g,%g,k=%d): err = %v, want substring %q", tc.x, tc.y, tc.k, err, tc.wantSub)
			}
			if _, err := eng.TopK(tc.x, tc.y, "sushi", tc.k); err == nil || !containsSub(err, tc.wantSub) {
				t.Errorf("TopK(%g,%g,k=%d): err = %v, want substring %q", tc.x, tc.y, tc.k, err, tc.wantSub)
			}
			res := eng.BatchQuery([]QueryRequest{{X: tc.x, Y: tc.y, Text: "sushi", K: tc.k}}, 1)
			if res[0].Err == nil || !containsSub(res[0].Err, tc.wantSub) {
				t.Errorf("BatchQuery(%g,%g,k=%d): err = %v, want substring %q", tc.x, tc.y, tc.k, res[0].Err, tc.wantSub)
			}
		})
	}
}

func containsSub(err error, sub string) bool {
	return err != nil && strings.Contains(err.Error(), sub)
}
