package rstknn

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func queriesAgree(t *testing.T, e *Engine, rng *rand.Rand, trials int) {
	t.Helper()
	for i := 0; i < trials; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		text := menuTerms[rng.Intn(len(menuTerms))] + " " + menuTerms[rng.Intn(len(menuTerms))]
		k := 1 + rng.Intn(5)
		got, err := e.Query(x, y, text, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.NaiveQuery(x, y, text, k)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.IDs) != fmt.Sprint(want) {
			t.Fatalf("trial %d (k=%d): Query %v != NaiveQuery %v", i, k, got.IDs, want)
		}
	}
}

func TestInsertDeleteQueryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	objs := genRestaurants(rng, 240)
	eng, err := Build(objs[:120], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[120:] {
		st, err := eng.Insert(o)
		if err != nil {
			t.Fatal(err)
		}
		if st.Writes == 0 || st.PagesWritten == 0 {
			t.Fatalf("Insert(%d) reported no write I/O: %+v", o.ID, st)
		}
	}
	for i := 0; i < 240; i += 5 {
		found, st, err := eng.Delete(int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("Delete(%d) found nothing", i)
		}
		if st.Retired == 0 {
			t.Fatalf("Delete(%d) retired no nodes: %+v", i, st)
		}
	}
	if eng.Len() != 240-48 {
		t.Fatalf("Len = %d", eng.Len())
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree and the object table must describe the same collection.
	queriesAgree(t, eng, rng, 8)

	// Deleting an unknown ID is a no-op, not an error.
	if found, _, err := eng.Delete(99999); err != nil || found {
		t.Fatalf("Delete(unknown): found=%v err=%v", found, err)
	}
	// Reinserting a deleted ID works; inserting a live one does not.
	if _, err := eng.Insert(objs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert(objs[0]); err == nil {
		t.Fatal("duplicate Insert must fail")
	}
}

func TestApplyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	objs := genRestaurants(rng, 150)
	eng, err := Build(objs[:100], Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Duplicate IDs within the batch fail upfront.
	if _, err := eng.Apply(Batch{Insert: []Object{objs[100], objs[100]}}); err == nil {
		t.Fatal("duplicate insert IDs within a batch must fail")
	}
	// Colliding with a live object the batch does not delete fails.
	if _, err := eng.Apply(Batch{Insert: []Object{objs[0]}}); err == nil {
		t.Fatal("insert colliding with a live object must fail")
	}
	if eng.Len() != 100 {
		t.Fatalf("failed Apply changed the index: Len = %d", eng.Len())
	}

	// Delete-then-insert of the same ID in one batch replaces the object;
	// unknown delete IDs are skipped.
	replacement := Object{ID: objs[0].ID, X: 50, Y: 50, Text: "vegan salad"}
	st, err := eng.Apply(Batch{
		Insert: append([]Object{replacement}, objs[100:]...),
		Delete: []int32{objs[0].ID, 88888},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || st.Retired == 0 {
		t.Fatalf("Apply reported no work: %+v", st)
	}
	if eng.Len() != 150 {
		t.Fatalf("Len = %d, want 150", eng.Len())
	}
	x, y, _, err := eng.ObjectByID(objs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if x != 50 || y != 50 {
		t.Fatalf("replacement not applied: at (%g, %g)", x, y)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	queriesAgree(t, eng, rng, 6)

	// The empty batch is a no-op.
	if _, err := eng.Apply(Batch{}); err != nil {
		t.Fatal(err)
	}
}

func TestMutationsRejectedOnClusteredEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	objs := genRestaurants(rng, 80)
	eng, err := Build(objs[:79], Options{Index: CIUR, Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert(objs[79]); !errors.Is(err, ErrClustered) {
		t.Errorf("Insert on CIUR: %v", err)
	}
	if _, _, err := eng.Delete(objs[0].ID); !errors.Is(err, ErrClustered) {
		t.Errorf("Delete on CIUR: %v", err)
	}
	if _, err := eng.Apply(Batch{Delete: []int32{objs[0].ID}}); !errors.Is(err, ErrClustered) {
		t.Errorf("Apply on CIUR: %v", err)
	}
}

// TestPinnedSnapshotSurvivesDelete is the snapshot-isolation property
// test: a reader that pinned the index before a delete keeps seeing the
// deleted object — with bit-identical results — even after the write is
// published and reclamation has been attempted.
func TestPinnedSnapshotSurvivesDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	objs := genRestaurants(rng, 200)
	eng, err := Build(objs, Options{NodeCache: 128})
	if err != nil {
		t.Fatal(err)
	}
	victim := objs[7]

	// Pin BEFORE the delete, like a long-running query would.
	st, release := eng.pin()
	doc := eng.vectorize(victim.Text)
	before, err := eng.queryVector(context.Background(), st, victim.X, victim.Y, doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	contains := func(ids []int32, id int32) bool {
		for _, v := range ids {
			if v == id {
				return true
			}
		}
		return false
	}
	if !contains(before.IDs, victim.ID) {
		t.Fatalf("setup: reverse query at the victim's own location/text must report it, got %v", before.IDs)
	}

	for _, o := range []Object{victim, objs[8], objs[9]} {
		if found, _, err := eng.Delete(o.ID); err != nil || !found {
			t.Fatalf("Delete(%d): found=%v err=%v", o.ID, found, err)
		}
	}
	eng.Compact() // must NOT free anything the pinned reader can reach

	// The pinned snapshot answers exactly as before the deletes.
	after, err := eng.queryVector(context.Background(), st, victim.X, victim.Y, doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after.IDs) != fmt.Sprint(before.IDs) {
		t.Fatalf("pinned snapshot drifted: %v != %v", after.IDs, before.IDs)
	}
	if err := st.tree.CheckInvariants(); err != nil {
		t.Fatalf("pinned snapshot corrupted by concurrent deletes: %v", err)
	}

	// A fresh query sees the post-delete index.
	fresh, err := eng.Query(victim.X, victim.Y, victim.Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if contains(fresh.IDs, victim.ID) {
		t.Fatalf("deleted object %d still visible to new queries: %v", victim.ID, fresh.IDs)
	}

	// The deletes' garbage is blocked on our pin.
	if eng.rec.Stats().Pending == 0 {
		t.Fatal("expected retired nodes pending behind the pin")
	}
	// Releasing the last pin unblocks reclamation (Release itself sweeps;
	// Compact would catch anything left).
	release()
	eng.Compact()
	if rs := eng.rec.Stats(); rs.Pending != 0 || rs.Freed == 0 {
		t.Fatalf("after release: pending=%d freed=%d", rs.Pending, rs.Freed)
	}
}

// TestLiveBytesBoundedUnderChurn proves repeated Insert/Delete no longer
// grows the index: retired path copies are freed and their slots reused,
// so live (and total) footprint stays within a constant factor of the
// steady state instead of growing linearly with the update count.
func TestLiveBytesBoundedUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	objs := genRestaurants(rng, 300)
	eng, err := Build(objs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s0 := eng.Stats()
	const churn = 300
	for i := 0; i < churn; i++ {
		o := Object{ID: 50000, X: rng.Float64() * 100, Y: rng.Float64() * 100, Text: "sushi ramen"}
		if _, err := eng.Insert(o); err != nil {
			t.Fatal(err)
		}
		if found, _, err := eng.Delete(o.ID); err != nil || !found {
			t.Fatalf("churn %d: found=%v err=%v", i, found, err)
		}
	}
	eng.Compact()
	s1 := eng.Stats()
	if s1.PendingReclaim != 0 {
		t.Fatalf("%d nodes pending with no readers", s1.PendingReclaim)
	}
	// Each churn round path-copies ~height nodes; without reclamation
	// TotalBytes would grow by hundreds of node blobs. Allow the tree
	// shape to settle but reject anything resembling linear growth.
	if s1.LiveBytes > s0.LiveBytes*3/2 {
		t.Errorf("LiveBytes grew %d -> %d under churn", s0.LiveBytes, s1.LiveBytes)
	}
	if s1.Bytes > s0.Bytes*3/2 {
		t.Errorf("TotalBytes grew %d -> %d: freed slots not reused", s0.Bytes, s1.Bytes)
	}
	if s1.Nodes > s0.Nodes*2 {
		t.Errorf("slot count grew %d -> %d: free list not recycling", s0.Nodes, s1.Nodes)
	}
	if s1.Writes == 0 || s1.PagesWritten == 0 {
		t.Errorf("store-level write counters empty: %+v", s1)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueryMutateRace runs 4 writers against 4 readers on one
// engine. Under -race this is the memory-safety acceptance test for the
// copy-on-write architecture; in any mode it checks snapshot invariants
// after every swap and full consistency at the end.
func TestConcurrentQueryMutateRace(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	objs := genRestaurants(rng, 150)
	eng, err := Build(objs, Options{NodeCache: 256, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, opsPerWriter = 4, 4, 30
	var writerWG, readerWG sync.WaitGroup
	done := make(chan struct{})
	errCh := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			wrng := rand.New(rand.NewSource(int64(1000 + w)))
			base := int32(10000 + w*1000)
			for i := 0; i < opsPerWriter; i++ {
				o := Object{
					ID:   base + int32(i),
					X:    wrng.Float64() * 100,
					Y:    wrng.Float64() * 100,
					Text: menuTerms[wrng.Intn(len(menuTerms))],
				}
				var err error
				switch i % 3 {
				case 0:
					_, err = eng.Insert(o)
				case 1:
					_, err = eng.Apply(Batch{Insert: []Object{o}, Delete: []int32{base + int32(i-2)}})
				default:
					_, err = eng.Insert(o)
					if err == nil {
						_, _, err = eng.Delete(o.ID)
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
				// Invariants must hold on the snapshot just published.
				if err := eng.CheckInvariants(); err != nil {
					errCh <- fmt.Errorf("writer %d after op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rrng := rand.New(rand.NewSource(int64(2000 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				x, y := rrng.Float64()*100, rrng.Float64()*100
				text := menuTerms[rrng.Intn(len(menuTerms))]
				switch r % 3 {
				case 0:
					if _, err := eng.Query(x, y, text, 3); err != nil {
						errCh <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
				case 1:
					reqs := []QueryRequest{{X: x, Y: y, Text: text, K: 2}, {X: y, Y: x, Text: text, K: 4}}
					for i, br := range eng.BatchQuery(reqs, 2) {
						if br.Err != nil {
							errCh <- fmt.Errorf("reader %d batch %d: %w", r, i, br.Err)
							return
						}
					}
				default:
					eng.Stats()
					if _, err := eng.TopK(x, y, text, 3); err != nil {
						errCh <- fmt.Errorf("reader %d topk: %w", r, err)
						return
					}
				}
			}
		}(r)
	}

	// Stop readers once writers finish.
	writerWG.Wait()
	close(done)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	eng.Compact()
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final contents: originals plus exactly the inserts each writer left
	// live (i%3==2 inserts are deleted again; i%3==1 deletes i-2).
	queriesAgree(t, eng, rng, 5)
}
