package rstknn

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBatchSharedMatchesAblation pins the engine-level equivalence of
// shared-traversal batch execution: against two identically built
// engines — one with the shared path (the default), one forced onto the
// independent fan-out via Options.SharedBatch — the same batch must
// return identical per-request IDs and identical per-request logical
// counters, while the shared BatchStats show strictly fewer physical
// node reads.
func TestBatchSharedMatchesAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objs := genRestaurants(rng, 900)
	for _, idx := range []IndexKind{IUR, CIUR} {
		t.Run(idx.String(), func(t *testing.T) {
			shared, err := Build(objs, Options{Index: idx, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			indep, err := Build(objs, Options{Index: idx, Seed: 5, SharedBatch: -1})
			if err != nil {
				t.Fatal(err)
			}
			reqs := make([]QueryRequest, 24)
			for i := range reqs {
				reqs[i] = QueryRequest{X: rng.Float64() * 100, Y: rng.Float64() * 100,
					Text: menuTerms[i%len(menuTerms)], K: 1 + i%6}
			}
			ctx := context.Background()
			iRes, iStats := indep.BatchQueryStatsCtx(ctx, reqs, 0)
			if iStats.Shared {
				t.Fatal("SharedBatch<0 engine reported a shared batch")
			}
			for _, parallelism := range []int{1, 4} {
				sRes, sStats := shared.BatchQueryStatsCtx(ctx, reqs, parallelism)
				if !sStats.Shared {
					t.Fatalf("parallelism=%d: default engine did not share", parallelism)
				}
				logical := 0
				for i := range reqs {
					tag := fmt.Sprintf("parallelism=%d request=%d", parallelism, i)
					if sRes[i].Err != nil || iRes[i].Err != nil {
						t.Fatalf("%s: shared=%v independent=%v", tag, sRes[i].Err, iRes[i].Err)
					}
					ss, is := sRes[i].Result.Stats, iRes[i].Result.Stats
					if !reflect.DeepEqual(sRes[i].Result.IDs, iRes[i].Result.IDs) {
						t.Errorf("%s: IDs %v != independent %v", tag, sRes[i].Result.IDs, iRes[i].Result.IDs)
					}
					if ss.NodesRead != is.NodesRead || ss.ExactSims != is.ExactSims ||
						ss.BoundEvals != is.BoundEvals || ss.GroupPruned != is.GroupPruned ||
						ss.GroupReported != is.GroupReported || ss.Candidates != is.Candidates ||
						ss.Refinements != is.Refinements {
						t.Errorf("%s: logical counters drifted:\nshared      %+v\nindependent %+v", tag, ss, is)
					}
					if ss.SharedReads != int64(ss.NodesRead) {
						t.Errorf("%s: SharedReads %d != NodesRead %d", tag, ss.SharedReads, ss.NodesRead)
					}
					if ss.PageAccesses != 0 {
						t.Errorf("%s: shared query charged %d pages; physical I/O belongs to BatchStats", tag, ss.PageAccesses)
					}
					if r := ss.CacheHitRatio(); r != 1 {
						t.Errorf("%s: CacheHitRatio %g, want 1 (every read batch-shared)", tag, r)
					}
					if is.SharedReads != 0 {
						t.Errorf("%s: independent query recorded %d shared reads", tag, is.SharedReads)
					}
					logical += ss.NodesRead
				}
				if sStats.NodesRead >= iStats.NodesRead {
					t.Errorf("parallelism=%d: shared physical reads %d not below independent %d",
						parallelism, sStats.NodesRead, iStats.NodesRead)
				}
				if sStats.SharedHits != logical-sStats.NodesRead {
					t.Errorf("parallelism=%d: SharedHits %d != logical %d - physical %d",
						parallelism, sStats.SharedHits, logical, sStats.NodesRead)
				}
				if want := float64(sStats.NodesRead) / float64(len(reqs)); sStats.NodesReadPerQuery != want {
					t.Errorf("parallelism=%d: NodesReadPerQuery %g != %g",
						parallelism, sStats.NodesReadPerQuery, want)
				}
				if sStats.Requests != len(reqs) {
					t.Errorf("parallelism=%d: Requests %d != %d", parallelism, sStats.Requests, len(reqs))
				}
			}
		})
	}
}

// TestBatchSharedMixedValidity pins per-request error isolation on the
// shared path: invalid requests fail individually without dragging the
// valid ones out of the shared traversal.
func TestBatchSharedMixedValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	eng, err := Build(genRestaurants(rng, 300), Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []QueryRequest{
		{X: 10, Y: 10, Text: "sushi", K: 3},
		{X: 20, Y: 20, Text: "ramen", K: 0},
		{X: 30, Y: 30, Text: "pizza", K: 2},
	}
	out, bs := eng.BatchQueryStatsCtx(context.Background(), reqs, 0)
	if !bs.Shared {
		t.Fatal("expected the shared path")
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid requests failed: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Fatal("K=0 request succeeded")
	}
	// A pre-cancelled context fails every request up front.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out = eng.BatchQueryCtx(ctx, reqs[:2], 0)
	for i := range out {
		if out[i].Err == nil {
			t.Errorf("request %d ignored the cancelled context", i)
		}
	}
}

// TestBatchSharedSnapshotUnderMutation is the -race stress test for the
// shared batch path: writers hammer Insert/Delete/Apply while readers
// run shared batches of IDENTICAL requests. Because the whole batch pins
// ONE snapshot, all copies of the request inside one batch must return
// the same IDs even though the index version changes between batches —
// any torn read of a swapped snapshot or a reclaimed node would break
// the agreement (or trip the race detector).
func TestBatchSharedSnapshotUnderMutation(t *testing.T) {
	// Raise the worker clamp so shared batches run genuinely parallel
	// rounds even on a 1-CPU machine — otherwise the intra-batch
	// concurrency this test (and -race) targets never materializes.
	if runtime.GOMAXPROCS(0) < 4 {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	rng := rand.New(rand.NewSource(35))
	objs := genRestaurants(rng, 500)
	eng, err := Build(objs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	errCh := make(chan error, 8)
	var writerWG, readerWG sync.WaitGroup

	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		wrng := rand.New(rand.NewSource(99))
		nextID := int32(10000)
		deadline := time.Now().Add(600 * time.Millisecond)
		for i := 0; time.Now().Before(deadline); i++ {
			switch i % 3 {
			case 0:
				o := Object{ID: nextID, X: wrng.Float64() * 100, Y: wrng.Float64() * 100,
					Text: menuTerms[wrng.Intn(len(menuTerms))]}
				nextID++
				if _, err := eng.Insert(o); err != nil {
					errCh <- fmt.Errorf("insert: %w", err)
					return
				}
			case 1:
				if _, _, err := eng.Delete(int32(wrng.Intn(500))); err != nil {
					errCh <- fmt.Errorf("delete: %w", err)
					return
				}
			default:
				b := Batch{
					Insert: []Object{{ID: nextID, X: wrng.Float64() * 100, Y: wrng.Float64() * 100,
						Text: menuTerms[wrng.Intn(len(menuTerms))]}},
					Delete: []int32{int32(wrng.Intn(500))},
				}
				nextID++
				if _, err := eng.Apply(b); err != nil {
					errCh <- fmt.Errorf("apply: %w", err)
					return
				}
			}
			eng.Compact()
		}
	}()

	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rrng := rand.New(rand.NewSource(int64(500 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				req := QueryRequest{X: rrng.Float64() * 100, Y: rrng.Float64() * 100,
					Text: menuTerms[rrng.Intn(len(menuTerms))], K: 1 + rrng.Intn(5)}
				reqs := make([]QueryRequest, 6)
				for i := range reqs {
					reqs[i] = req
				}
				out, bs := eng.BatchQueryStatsCtx(context.Background(), reqs, 1+rrng.Intn(4))
				if !bs.Shared {
					errCh <- fmt.Errorf("reader %d: batch not shared", r)
					return
				}
				for i := range out {
					if out[i].Err != nil {
						errCh <- fmt.Errorf("reader %d request %d: %w", r, i, out[i].Err)
						return
					}
					if !reflect.DeepEqual(out[i].Result.IDs, out[0].Result.IDs) {
						errCh <- fmt.Errorf("reader %d: identical requests disagree within one batch: %v vs %v — snapshot not stable",
							r, out[i].Result.IDs, out[0].Result.IDs)
						return
					}
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(done)
	readerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
