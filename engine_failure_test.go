package rstknn

import (
	"math/rand"
	"testing"

	"rstknn/internal/storage"
)

// TestQueryStorageErrorReleasesPin forces a storage failure in the middle
// of a query and checks the error path against the epoch reclaimer: the
// aborted query must release its pin, so the min-pinned-epoch frontier
// advances and nodes retired afterwards are reclaimed immediately instead
// of parking behind a wedged reader.
func TestQueryStorageErrorReleasesPin(t *testing.T) {
	eng, err := Build(genRestaurants(rand.New(rand.NewSource(11)), 300), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(50, 50, "sushi seafood", 3); err != nil {
		t.Fatalf("healthy query: %v", err)
	}

	// Corrupt every stored node blob: the next traversal dies decoding a
	// node mid-query. Update errors on recycled slots are irrelevant.
	store := eng.store.(*storage.Store)
	garbage := []byte{0xde, 0xad, 0xbe, 0xef}
	for id := 0; id < store.Len()+8; id++ {
		_ = store.Update(storage.NodeID(id), garbage)
	}
	if _, err := eng.Query(50, 50, "sushi seafood", 3); err == nil {
		t.Fatal("query over corrupted storage succeeded")
	}

	// The failed query must not leak its pin.
	if pins := eng.rec.Stats().Pins; pins != 0 {
		t.Fatalf("failed query left %d pins registered", pins)
	}

	// With the frontier clear, retirement reclaims immediately.
	doomed := store.Put([]byte("doomed"))
	eng.rec.Retire([]storage.NodeID{doomed})
	if p := eng.rec.Stats().Pending; p != 0 {
		t.Fatalf("pending = %d after retire with no pins, want 0", p)
	}
	if _, err := store.Get(doomed); err == nil {
		t.Fatal("retired node is still readable; it should have been freed")
	}

	// Contrast: a live pin does hold the frontier — proving the previous
	// assertions measured the release, not a reclaimer that frees
	// unconditionally.
	_, release := eng.pin()
	parked := store.Put([]byte("parked"))
	eng.rec.Retire([]storage.NodeID{parked})
	if p := eng.rec.Stats().Pending; p != 1 {
		t.Fatalf("pending = %d under a live pin, want 1", p)
	}
	release()
	if p := eng.rec.Stats().Pending; p != 0 {
		t.Fatalf("pending = %d after release, want 0", p)
	}
}
