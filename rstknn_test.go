package rstknn

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// menu vocabulary for readable test datasets.
var menuTerms = []string{
	"sushi", "seafood", "noodles", "ramen", "pizza", "pasta", "burger",
	"tacos", "curry", "kebab", "salad", "vegan", "bbq", "steak", "dessert",
}

func genRestaurants(rng *rand.Rand, n int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		var sb strings.Builder
		for j := 0; j < 1+rng.Intn(4); j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(menuTerms[rng.Intn(len(menuTerms))])
		}
		objs[i] = Object{
			ID:   int32(i),
			X:    rng.Float64() * 100,
			Y:    rng.Float64() * 100,
			Text: sb.String(),
		}
	}
	return objs
}

func TestBuildAndQuerySmoke(t *testing.T) {
	objects := []Object{
		{ID: 1, X: 3, Y: 4, Text: "sushi seafood"},
		{ID: 2, X: 8, Y: 1, Text: "noodles ramen"},
		{ID: 3, X: 2, Y: 2, Text: "sushi bar"},
		{ID: 4, X: 9, Y: 9, Text: "pizza pasta"},
	}
	eng, err := Build(objects, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 4 {
		t.Fatalf("Len = %d", eng.Len())
	}
	res, err := eng.Query(3, 3, "sushi", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Fatal("expected at least one result")
	}
	if res.Stats.NodesRead == 0 || res.Stats.ExactSims == 0 {
		t.Errorf("stats should record work: %+v", res.Stats)
	}
}

func TestEngineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objects := genRestaurants(rng, 300)
	configs := []Options{
		{},
		{Index: CIUR, Clusters: 5},
		{Index: CIUR, Clusters: 5, EntropyRefinement: true, OutlierThreshold: 0.15},
		{Weighting: "binary"},
		{Measure: "cosine"},
		{Alpha: 0.9},
		{AlphaSet: true}, // pure text
		{Alpha: 1},       // pure spatial
		{GroupRefine: 2},
	}
	for ci, opt := range configs {
		eng, err := Build(objects, opt)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		for trial := 0; trial < 4; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			text := menuTerms[rng.Intn(len(menuTerms))] + " " + menuTerms[rng.Intn(len(menuTerms))]
			k := 1 + rng.Intn(8)
			res, err := eng.Query(x, y, text, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.NaiveQuery(x, y, text, k)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(res.IDs) != fmt.Sprint(want) {
				t.Fatalf("config %d trial %d: engine %v != naive %v", ci, trial, res.IDs, want)
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	objs := genRestaurants(rand.New(rand.NewSource(2)), 10)
	cases := []Options{
		{Alpha: 1.2},
		{Weighting: "bm25"},
		{Measure: "levenshtein"},
	}
	for i, opt := range cases {
		if _, err := Build(objs, opt); err == nil {
			t.Errorf("config %d should fail: %+v", i, opt)
		}
	}
	if _, err := Build([]Object{{ID: 1}, {ID: 1}}, Options{}); err == nil {
		t.Error("duplicate IDs should fail")
	}
}

func TestTopKEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eng, err := Build(genRestaurants(rng, 200), Options{})
	if err != nil {
		t.Fatal(err)
	}
	nbs, err := eng.TopK(50, 50, "sushi seafood", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 10 {
		t.Fatalf("TopK returned %d", len(nbs))
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i].Similarity > nbs[i-1].Similarity {
			t.Fatal("TopK not sorted by similarity")
		}
	}
}

func TestInfluenceEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	facilities := genRestaurants(rng, 150)
	users := genRestaurants(rng, 40)
	eng, err := Build(facilities, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Influence(users, 50, 50, "sushi seafood ramen", 5)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: influencing with k = |facilities|+1 influences everyone.
	all, err := eng.Influence(users, 50, 50, "sushi", len(facilities)+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(users) {
		t.Errorf("k > |facilities| should influence all users; got %d", len(all))
	}
	if len(got) > len(all) {
		t.Error("smaller k cannot influence more users")
	}
}

func TestIndexStats(t *testing.T) {
	eng, err := Build(genRestaurants(rand.New(rand.NewSource(6)), 500), Options{Index: CIUR, Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Objects != 500 || st.Nodes == 0 || st.Pages == 0 || st.Bytes == 0 {
		t.Errorf("stats look wrong: %+v", st)
	}
	if st.Clusters < 4 || st.Kind != CIUR {
		t.Errorf("cluster info wrong: %+v", st)
	}
	if st.VocabSize == 0 || st.MaxDistance <= 0 {
		t.Errorf("vocab/maxD wrong: %+v", st)
	}
	if st.Height < 1 {
		t.Errorf("height = %d", st.Height)
	}
}

func TestObjectByID(t *testing.T) {
	eng, err := Build([]Object{{ID: 7, X: 1, Y: 2, Text: "sushi"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, y, doc, err := eng.ObjectByID(7)
	if err != nil || x != 1 || y != 2 || doc.IsEmpty() {
		t.Errorf("ObjectByID: %g %g %v %v", x, y, doc, err)
	}
	if _, _, _, err := eng.ObjectByID(99); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestUnknownQueryTermsAreIgnored(t *testing.T) {
	eng, err := Build(genRestaurants(rand.New(rand.NewSource(7)), 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A query made of terms absent from the corpus behaves like an empty
	// text query (and must not panic).
	a, err := eng.Query(10, 10, "zzzz qqqq", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Query(10, 10, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) {
		t.Errorf("unknown-term query %v != empty query %v", a.IDs, b.IDs)
	}
}

func TestBufferPoolReducesIO(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objects := genRestaurants(rng, 400)
	cold, err := Build(objects, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Build(objects, Options{BufferPoolPages: 100000})
	if err != nil {
		t.Fatal(err)
	}
	warm.ResetIOStats()
	cold.ResetIOStats()
	// Prime the pool, then measure a repeat query.
	if _, err := warm.Query(50, 50, "sushi", 5); err != nil {
		t.Fatal(err)
	}
	r1, err := warm.Query(50, 50, "sushi", 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cold.Query(50, 50, "sushi", 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.PageAccesses != 0 {
		t.Errorf("warm repeat query should be free: %d pages", r1.Stats.PageAccesses)
	}
	if r2.Stats.PageAccesses == 0 {
		t.Error("cold query should cost pages")
	}
	if fmt.Sprint(r1.IDs) != fmt.Sprint(r2.IDs) {
		t.Error("cache must not change results")
	}
}

func TestEmptyEngine(t *testing.T) {
	eng, err := Build(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(0, 0, "anything", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 {
		t.Errorf("empty engine returned %v", res.IDs)
	}
}

func TestQueryByID(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	objects := genRestaurants(rng, 150)
	eng, err := Build(objects, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.QueryByID(42, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.IDs {
		if id == 42 {
			t.Fatal("query object must not appear in its own result")
		}
	}
	// Equivalent to querying with the object's own location and text,
	// minus the object itself.
	x, y, doc, err := eng.ObjectByID(42)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := eng.QueryVector(x, y, doc, 5)
	if err != nil {
		t.Fatal(err)
	}
	var want []int32
	for _, id := range direct.IDs {
		if id != 42 {
			want = append(want, id)
		}
	}
	if fmt.Sprint(res.IDs) != fmt.Sprint(want) {
		t.Errorf("QueryByID %v != filtered direct query %v", res.IDs, want)
	}
	if _, err := eng.QueryByID(9999, 5); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	eng, err := Build(genRestaurants(rng, 400), Options{Index: CIUR, Clusters: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers computed serially.
	type q struct {
		x, y float64
		text string
	}
	qs := make([]q, 16)
	want := make([][]int32, len(qs))
	for i := range qs {
		qs[i] = q{rng.Float64() * 100, rng.Float64() * 100, menuTerms[rng.Intn(len(menuTerms))]}
		res, err := eng.Query(qs[i].x, qs[i].y, qs[i].text, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.IDs
	}
	// The same queries in parallel must return identical results (the
	// I/O statistics interleave, the answers must not).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < len(qs); i++ {
				idx := (i + seed) % len(qs)
				res, err := eng.Query(qs[idx].x, qs[idx].y, qs[idx].text, 5)
				if err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if fmt.Sprint(res.IDs) != fmt.Sprint(want[idx]) {
					t.Errorf("concurrent query %d diverged", idx)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestQueryDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng, err := Build(genRestaurants(rng, 300), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Query(42, 42, "sushi ramen", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Query(42, 42, "sushi ramen", 7)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) {
		t.Error("repeated query returned different results")
	}
	if a.Stats.NodesRead != b.Stats.NodesRead || a.Stats.ExactSims != b.Stats.ExactSims {
		t.Errorf("repeated query did different work: %+v vs %+v", a.Stats, b.Stats)
	}
}
